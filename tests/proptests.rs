//! Cross-crate property-based tests (proptest): invariants of the query
//! language, query merging, statistics, traces, the XML codec, NMEA,
//! the event windows, the fault-injection/failover machinery, the
//! partitioned engine's `(time, actor, seq)` merge, and the brokerd
//! chaos layer (dedup idempotence, restart recovery, chaos-transcript
//! partition invariance).

use brokerd::{
    fault_edges, link_faults, link_label, restart_edges, run_fleet, BrokerId, BrokerNode,
    DedupWindow, FleetConfig, NodeConfig, PacketSeq, SubMode,
};
use contory::backoff::BackoffPolicy;
use contory::merge::{post_extract, try_merge};
use contory::policy::Condition;
use contory::query::{
    AggFunc, CmpOp, CxtQuery, DurationClause, EventExpr, EventTerm, NumNodes, PredValue,
    QueryMode, Source, WherePredicate,
};
use contory::{CxtItem, CxtValue, EventWindow};
use fuego::xml::XmlElement;
use proptest::prelude::*;
use simkit::stats::Summary;
use simkit::trace::TimeSeries;
use simkit::{ActorId, EventCtx, ShardConfig, ShardSim, SimDuration, SimTime};

// ------------------------------------------------------------------
// Strategies
// ------------------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    // Identifiers that cannot collide with keywords or aggregates.
    "[a-z][a-z0-9]{0,8}".prop_map(|s| format!("t{s}"))
}

fn duration_secs() -> impl Strategy<Value = SimDuration> {
    (1u64..7200).prop_map(SimDuration::from_secs)
}

fn num3() -> impl Strategy<Value = f64> {
    // Numbers with three decimals: exact in display/parse round trips.
    (0u32..100_000).prop_map(|n| n as f64 / 1000.0)
}

fn source() -> impl Strategy<Value = Source> {
    prop_oneof![
        Just(Source::IntSensor),
        Just(Source::ExtInfra),
        (
            prop_oneof![Just(NumNodes::All), (1u32..20).prop_map(NumNodes::First)],
            1u32..5
        )
            .prop_map(|(num_nodes, num_hops)| Source::AdHocNetwork {
                num_nodes,
                num_hops
            }),
        ident().prop_map(Source::Entity),
        (num3(), num3(), num3()).prop_map(|(x, y, radius)| Source::Region { x, y, radius }),
    ]
}

fn where_predicate() -> impl Strategy<Value = WherePredicate> {
    (
        prop_oneof![
            Just("accuracy".to_owned()),
            Just("precision".to_owned()),
            Just("correctness".to_owned()),
            Just("completeness".to_owned()),
        ],
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge),
        ],
        num3(),
    )
        .prop_map(|(key, op, value)| WherePredicate {
            key,
            op,
            value: PredValue::Number(value),
        })
}

fn event_term(field: String) -> impl Strategy<Value = EventTerm> {
    prop_oneof![
        num3().prop_map(EventTerm::Number),
        Just(EventTerm::Field(field.clone())),
        prop_oneof![
            Just(AggFunc::Avg),
            Just(AggFunc::Min),
            Just(AggFunc::Max),
            Just(AggFunc::Sum),
            Just(AggFunc::Count),
        ]
        .prop_map(move |func| EventTerm::Agg {
            func,
            field: field.clone()
        }),
    ]
}

fn event_expr(field: String) -> impl Strategy<Value = EventExpr> {
    let leaf = (
        event_term(field.clone()),
        prop_oneof![Just(CmpOp::Gt), Just(CmpOp::Lt), Just(CmpOp::Ge), Just(CmpOp::Le)],
        event_term(field),
    )
        .prop_map(|(left, op, right)| EventExpr::Cmp { left, op, right });
    leaf.prop_recursive(3, 12, 2, |inner| {
        (inner.clone(), inner).prop_map(|(a, b)| {
            if a == b {
                a
            } else {
                EventExpr::And(Box::new(a), Box::new(b))
            }
        })
    })
}

fn query() -> impl Strategy<Value = CxtQuery> {
    (
        ident(),
        proptest::option::of(source()),
        proptest::collection::vec(where_predicate(), 0..3),
        proptest::option::of(duration_secs()),
        prop_oneof![
            duration_secs().prop_map(DurationClause::Time),
            (1u32..100).prop_map(DurationClause::Samples)
        ],
    )
        .prop_flat_map(|(select, from, where_clause, freshness, duration)| {
            let field = select.clone();
            prop_oneof![
                Just(QueryMode::OnDemand),
                duration_secs().prop_map(QueryMode::Periodic),
                event_expr(field).prop_map(QueryMode::Event),
            ]
            .prop_map(move |mode| CxtQuery {
                select: select.clone(),
                from: from.clone(),
                where_clause: where_clause.clone(),
                freshness,
                duration,
                mode,
            })
        })
}

fn item_for(select: &str) -> impl Strategy<Value = CxtItem> {
    let select = select.to_owned();
    (num3(), proptest::option::of(num3()), 0u64..3600).prop_map(move |(v, acc, age)| {
        let mut item = CxtItem::new(
            select.clone(),
            CxtValue::number(v),
            SimTime::from_secs(3600 - age),
        );
        item.metadata.accuracy = acc;
        item.metadata.precision = acc;
        item.metadata.correctness = acc.map(|a| a.min(1.0));
        item.metadata.completeness = acc.map(|a| a.min(1.0));
        item
    })
}

// ------------------------------------------------------------------
// Partitioned-engine plans
// ------------------------------------------------------------------

/// Actor population the shard-merge plans run over.
const PLAN_ACTORS: u64 = 12;

/// One scheduled root event: `(actor, at_ms, payload, hops)` where each
/// hop `(dest, delay_ms)` is a cross-actor forward executed in sequence.
type PlanRoot = (u8, u16, u32, Vec<(u8, u16)>);

/// A message chain for the shard-merge properties: executing an event
/// appends `payload` to the actor's log, then forwards the remaining
/// hops (payload incremented per hop) to the next destination.
#[derive(Clone)]
struct ChainEv {
    payload: u32,
    hops: Vec<(u8, u16)>,
}

fn shard_plan() -> impl Strategy<Value = Vec<PlanRoot>> {
    proptest::collection::vec(
        (
            0u8..(PLAN_ACTORS as u8),
            0u16..2000,
            0u32..1_000_000,
            proptest::collection::vec((0u8..(PLAN_ACTORS as u8), 0u16..400), 0..4),
        ),
        1..24,
    )
}

/// Runs a plan on a `shards` × `threads` engine until idle and returns
/// (per-actor logs in actor order, events processed, messages delivered,
/// dead letters).
fn run_plan(plan: &[PlanRoot], shards: u32, threads: u32) -> (Vec<Vec<u32>>, u64, u64, u64) {
    let mut sim = ShardSim::new(
        ShardConfig {
            seed: 1,
            shards,
            threads,
            record_transcript: false,
        },
        |log: &mut Vec<u32>, ctx: &mut EventCtx<'_, ChainEv>, ev: ChainEv| {
            log.push(ev.payload);
            let mut hops = ev.hops;
            if !hops.is_empty() {
                let (dest, delay) = hops.remove(0);
                ctx.send(
                    ActorId(u64::from(dest)),
                    SimDuration::from_millis(u64::from(delay)),
                    ChainEv {
                        payload: ev.payload.wrapping_add(1),
                        hops,
                    },
                );
            }
        },
    );
    for a in 0..PLAN_ACTORS {
        assert!(sim.add_actor(ActorId(a), Vec::new()));
    }
    for (actor, at, payload, hops) in plan {
        sim.schedule(
            ActorId(u64::from(*actor)),
            SimTime::from_millis(u64::from(*at)),
            ChainEv {
                payload: *payload,
                hops: hops.clone(),
            },
        )
        .expect("plan actors all registered");
    }
    sim.run_until_idle();
    let logs = (0..PLAN_ACTORS)
        .map(|a| sim.actor_state(ActorId(a)).cloned().unwrap_or_default())
        .collect();
    (
        logs,
        sim.events_processed(),
        sim.messages_delivered(),
        sim.dead_letters(),
    )
}

// ------------------------------------------------------------------
// Brokerd chaos helpers
// ------------------------------------------------------------------

/// A small chaotic broker fleet: every federation link lossy, one
/// broker crash-restarted mid-run, short leases with renewal. The crash
/// downtime (3 s) exceeds the forward-retry horizon (~2.25 s at the
/// default 150 ms timeout × 4 attempts), matching the `broker_chaos`
/// scenario's sizing rule.
fn chaos_fleet(seed: u64, shards: u32, threads: u32) -> FleetConfig {
    let mut plan = simkit::FaultPlan::new(seed);
    let fault = simkit::faults::LinkFault {
        drop_ppm: 70_000,
        dup_ppm: 60_000,
        reorder_ppm: 50_000,
        reorder_delay: SimDuration::from_millis(40),
        jitter: SimDuration::from_millis(15),
    };
    let brokers = 3u16;
    for a in 0..brokers {
        for b in 0..brokers {
            if a != b {
                plan.lossy_link(&link_label(a, b), fault);
            }
        }
    }
    plan.crash_restart("broker:1", SimTime::from_secs(5), SimDuration::from_secs(3));
    let mut cfg = FleetConfig {
        seed,
        brokers,
        devices: 48,
        shards,
        threads,
        run_for: SimDuration::from_secs(16),
        ..FleetConfig::default()
    };
    cfg.node.fwd_attempts = 4;
    cfg.fault_edges = fault_edges(&plan, brokers);
    cfg.restarts = restart_edges(&plan, brokers);
    cfg.link_faults = link_faults(&plan, brokers);
    cfg.chaos_until = Some(SimTime::from_secs(12));
    cfg.sub_lease = Some(SimDuration::from_secs(8));
    cfg.resub_every = Some(SimDuration::from_secs(4));
    cfg
}

// ------------------------------------------------------------------
// Properties
// ------------------------------------------------------------------

proptest! {
    /// Rendering a query and parsing it back is stable: the round-trip
    /// fixes the canonical form.
    #[test]
    fn query_display_parse_round_trip(q in query()) {
        let rendered = q.to_string();
        let parsed = CxtQuery::parse(&rendered)
            .unwrap_or_else(|e| panic!("canonical text must parse: {rendered}: {e}"));
        prop_assert_eq!(parsed.to_string(), rendered);
    }

    /// Parsing canonical text reproduces the query's clauses exactly for
    /// non-EVENT queries (EVENT trees may re-associate).
    #[test]
    fn query_parse_is_exact_without_event(q in query()) {
        prop_assume!(!matches!(q.mode, QueryMode::Event(_)));
        let parsed = CxtQuery::parse(&q.to_string()).unwrap();
        prop_assert_eq!(parsed, q);
    }

    /// Merging is symmetric: merge(a,b) == merge(b,a).
    #[test]
    fn merge_is_symmetric(a in query(), b in query()) {
        let ab = try_merge(&a, &b);
        let ba = try_merge(&b, &a);
        match (&ab, &ba) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                // EVENT disjunction order may differ; compare modulo mode
                // for event queries.
                if !matches!(a.mode, QueryMode::Event(_)) {
                    prop_assert_eq!(x, y);
                }
            }
            _ => prop_assert!(false, "asymmetric mergeability"),
        }
    }

    /// Coverage: any item a member accepts, the merged query accepts too
    /// (post-extraction can always recover member results).
    #[test]
    fn merged_query_covers_members(a in query(), b in query(), items in proptest::collection::vec(item_for("tshared"), 1..8)) {
        let mut a = a;
        let mut b = b;
        a.select = "tshared".to_owned();
        b.select = "tshared".to_owned();
        let Some(merged) = try_merge(&a, &b) else {
            return Ok(());
        };
        let now = SimTime::from_secs(3600);
        for member in [&a, &b] {
            let member_hits = post_extract(member, &items, now);
            let merged_hits = post_extract(&merged, &items, now);
            for hit in &member_hits {
                prop_assert!(
                    merged_hits.contains(hit),
                    "item accepted by member but dropped by merged:\n member {member}\n merged {merged}"
                );
            }
        }
    }

    /// Merging is idempotent on a query with itself, except for EVENT
    /// queries (self-merge produces `cond OR cond`).
    #[test]
    fn merge_with_self_is_identity(q in query()) {
        prop_assume!(!matches!(q.mode, QueryMode::Event(_)));
        // WHERE clauses with repeated keys can collapse; require unique keys.
        let mut keys: Vec<&str> = q.where_clause.iter().map(|p| p.key.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assume!(keys.len() == q.where_clause.len());
        let merged = try_merge(&q, &q).expect("self-merge always possible");
        prop_assert_eq!(merged, q);
    }

    /// Summary::merge equals accumulating everything in one pass.
    #[test]
    fn summary_merge_matches_combined(a in proptest::collection::vec(-1e6f64..1e6, 0..50),
                                      b in proptest::collection::vec(-1e6f64..1e6, 0..50)) {
        let mut m = Summary::of(&a);
        m.merge(&Summary::of(&b));
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let full = Summary::of(&all);
        prop_assert_eq!(m.count(), full.count());
        prop_assert!((m.mean() - full.mean()).abs() <= 1e-6 * (1.0 + full.mean().abs()));
        prop_assert!((m.variance() - full.variance()).abs() <= 1e-4 * (1.0 + full.variance().abs()));
    }

    /// Trace integration is additive over adjacent windows.
    #[test]
    fn trace_integration_is_additive(points in proptest::collection::vec((0u64..1000, 0f64..2000.0), 1..30),
                                     split in 0u64..1000) {
        let mut sorted = points;
        sorted.sort_by_key(|(t, _)| *t);
        sorted.dedup_by_key(|(t, _)| *t);
        let mut ts = TimeSeries::new("p");
        for (t, v) in &sorted {
            ts.record(SimTime::from_secs(*t), *v);
        }
        let a = SimTime::ZERO;
        let m = SimTime::from_secs(split);
        let z = SimTime::from_secs(1000);
        let whole = ts.integrate(a, z);
        let parts = ts.integrate(a, m) + ts.integrate(m, z);
        prop_assert!((whole - parts).abs() < 1e-6 * (1.0 + whole.abs()));
    }

    /// XML escaping round-trips arbitrary attribute values and text.
    #[test]
    fn xml_round_trips(attr in "[ -~]{0,40}", text in "[ -~]{0,60}") {
        let el = XmlElement::new("node")
            .attr("value", attr.clone())
            .child(XmlElement::new("inner").text(text.clone()));
        let parsed = XmlElement::parse(&el.to_xml()).unwrap();
        prop_assert_eq!(parsed.attribute("value"), Some(attr.as_str()));
        prop_assert_eq!(parsed.find("inner").unwrap().text_content(), text.as_str());
    }

    /// EventWindow's AVG equals the naive mean of the window's values.
    #[test]
    fn event_window_avg_matches_naive(values in proptest::collection::vec(-1e3f64..1e3, 1..40), threshold in -1e3f64..1e3) {
        let mut w = EventWindow::new();
        for v in &values {
            w.push(CxtItem::new("x", CxtValue::number(*v), SimTime::ZERO));
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let expr = EventExpr::Cmp {
            left: EventTerm::Agg { func: AggFunc::Avg, field: "x".into() },
            op: CmpOp::Gt,
            right: EventTerm::Number(threshold),
        };
        // Skip knife-edge comparisons where float associativity decides.
        prop_assume!((mean - threshold).abs() > 1e-9);
        prop_assert_eq!(w.eval(&expr), mean > threshold);
    }

    /// GGA sentences round-trip positions to within NMEA quantization.
    #[test]
    fn nmea_gga_round_trip(x in -20_000f64..20_000.0, y in -20_000f64..20_000.0) {
        use std::rc::Rc;
        let p = radio::Position::new(x, y);
        let mut gps = sensors::GpsReceiver::new(Rc::new(move || p), 0.0, 1);
        let burst = gps.nmea_burst(SimTime::from_secs(60));
        let gga = burst.iter().find(|s| s.starts_with("$GPGGA")).unwrap();
        let back = sensors::gps::parse_gga(gga).unwrap();
        prop_assert!((back.x - x).abs() < 1.0, "x {} vs {}", back.x, x);
        prop_assert!((back.y - y).abs() < 1.0, "y {} vs {}", back.y, y);
    }

    /// Policy conditions round-trip through their text form.
    #[test]
    fn condition_round_trip(variable in "[a-z]{1,10}", n in 0u32..1000) {
        let text = format!("<{variable}, moreThan, {n}> or <{variable}, equal, low>");
        let c = Condition::parse(&text).unwrap();
        let again = Condition::parse(&c.to_string()).unwrap();
        prop_assert_eq!(c, again);
    }

    /// Item wire sizes stay within the paper's envelope for items shaped
    /// like the paper's (wind-like through location-like).
    #[test]
    fn item_wire_size_bounds(v in num3(), acc in proptest::option::of(num3())) {
        let mut small = CxtItem::new("wind", CxtValue::quantity(v, "kn"), SimTime::ZERO);
        small.metadata.accuracy = acc;
        prop_assert!((40..=80).contains(&small.wire_size()), "wind {}", small.wire_size());
        let big = CxtItem::new("location", CxtValue::Position { x: v, y: v }, SimTime::ZERO)
            .with_source("btgps://inssirf-iii/serial-0")
            .with_accuracy(5.0)
            .with_trust(contory::Trust::Trusted);
        prop_assert!((110..=160).contains(&big.wire_size()), "location {}", big.wire_size());
    }

    /// Backoff delays honour the policy contract for arbitrary policies:
    /// capped at `max`, monotone in the attempt number (multipliers below
    /// 1 are clamped), and jittered draws stay inside the ±jitter band
    /// around the undithered base delay.
    #[test]
    fn backoff_delays_are_capped_monotone_and_jitter_bounded(
        initial in 1u64..120,
        max in 1u64..600,
        multiplier in 0.5f64..4.0,
        jitter in 0.0f64..0.9,
    ) {
        let policy = BackoffPolicy {
            initial: SimDuration::from_secs(initial),
            max: SimDuration::from_secs(max),
            multiplier,
            jitter,
        };
        let mut prev = SimDuration::ZERO;
        for attempt in 0..40u32 {
            let base = policy.base_delay(attempt);
            prop_assert!(base <= policy.max, "attempt {attempt}: {base:?} over the cap");
            prop_assert!(base >= prev, "attempt {attempt}: base delay not monotone");
            prev = base;
            for unit in [0.0, 0.25, 0.5, 0.75, 0.999] {
                let d = policy.delay_with_unit(attempt, unit).as_secs_f64();
                let b = base.as_secs_f64();
                // SimDuration quantises to microseconds; allow for it.
                prop_assert!(
                    d >= b * (1.0 - jitter) - 2e-6 && d <= b * (1.0 + jitter) + 2e-6,
                    "attempt {attempt} unit {unit}: {d} outside ±{jitter} of {b}"
                );
            }
        }
    }

    /// A scripted link outage is airtight: while the fault plan holds the
    /// requester's BT radio down, no context item is delivered to the
    /// client (a short grace window covers frames already in flight when
    /// the link drops).
    #[test]
    fn fault_plan_never_delivers_through_a_down_link(
        seed in 0u64..100_000,
        start in 60u64..120,
        len in 30u64..90,
    ) {
        use std::cell::RefCell;
        use std::rc::Rc;
        let tb = testbed::Testbed::with_seed(seed);
        let requester = tb.add_phone(testbed::PhoneSetup {
            metered: false,
            ..testbed::PhoneSetup::nokia6630("req", radio::Position::new(0.0, 0.0))
        });
        let provider = tb.add_phone(testbed::PhoneSetup {
            metered: false,
            ..testbed::PhoneSetup::nokia6630("prov", radio::Position::new(6.0, 0.0))
        });
        provider.factory().register_cxt_server("app");
        {
            let factory = provider.factory().clone();
            let sim = tb.sim.clone();
            tb.sim.schedule_repeating(SimDuration::from_secs(10), move || {
                let _ = factory.publish_cxt_item(
                    CxtItem::new("wind", CxtValue::quantity(9.0, "kn"), sim.now())
                        .with_accuracy(0.5)
                        .with_trust(contory::Trust::Community),
                    None,
                );
                true
            });
        }
        let mut plan = simkit::FaultPlan::new(seed);
        plan.down_between(
            "bt:req",
            SimTime::from_secs(start),
            SimTime::from_secs(start + len),
        );
        tb.install_faults(&plan);
        tb.sim.run_for(SimDuration::from_secs(2));
        let client = Rc::new(contory::CollectingClient::new());
        let id = requester
            .submit(
                "SELECT wind FROM adHocNetwork(all,1) DURATION 30 min EVERY 10 sec",
                client.clone(),
            )
            .unwrap();
        // Sample the delivered-item count once per simulated second.
        let samples: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let samples = samples.clone();
            let client = client.clone();
            let tick = std::cell::Cell::new(0u64);
            tb.sim.schedule_repeating(SimDuration::from_secs(1), move || {
                tick.set(tick.get() + 1);
                samples.borrow_mut().push((tick.get() + 2, client.items_for(id).len()));
                true
            });
        }
        tb.sim.run_until(SimTime::from_secs(start + len));
        let grace = 3;
        for w in samples.borrow().windows(2) {
            let (_, c0) = w[0];
            let (t1, c1) = w[1];
            if t1 > start + grace && t1 <= start + len {
                prop_assert!(
                    c1 == c0,
                    "item delivered at t≈{t1}s inside the outage [{start}, {}]s",
                    start + len
                );
            }
        }
    }

    /// The whole failure/recovery pipeline is deterministic: the same
    /// seed and the same fault plan reproduce the identical
    /// `FailoverReport` (and the identical item stream and fault log).
    #[test]
    fn same_seed_and_plan_give_identical_failover_reports(
        seed in 0u64..100_000,
        start in 60u64..110,
        len in 40u64..80,
    ) {
        use std::rc::Rc;
        let run = || {
            let tb = testbed::Testbed::with_seed(seed);
            let requester = tb.add_phone(testbed::PhoneSetup {
                metered: false,
                factory: contory::FactoryConfig {
                    failover: contory::FailoverConfig {
                        max_retries: 1,
                        silence_periods: 4,
                        ..contory::FailoverConfig::default()
                    },
                    ..contory::FactoryConfig::default()
                },
                ..testbed::PhoneSetup::nokia6630("req", radio::Position::new(0.0, 0.0))
            });
            let provider = tb.add_phone(testbed::PhoneSetup {
                metered: false,
                ..testbed::PhoneSetup::nokia6630("prov", radio::Position::new(6.0, 0.0))
            });
            provider.factory().register_cxt_server("app");
            {
                let factory = provider.factory().clone();
                let sim = tb.sim.clone();
                tb.sim.schedule_repeating(SimDuration::from_secs(10), move || {
                    let _ = factory.publish_cxt_item(
                        CxtItem::new("wind", CxtValue::quantity(9.0, "kn"), sim.now())
                            .with_accuracy(0.5)
                            .with_trust(contory::Trust::Community),
                        None,
                    );
                    true
                });
            }
            let mut plan = simkit::FaultPlan::new(seed);
            plan.down_between(
                "bt:req",
                SimTime::from_secs(start),
                SimTime::from_secs(start + len),
            );
            let injector = tb.install_faults(&plan);
            tb.sim.run_for(SimDuration::from_secs(2));
            let client = Rc::new(contory::CollectingClient::new());
            let id = requester
                .submit(
                    "SELECT wind FROM adHocNetwork(all,1) DURATION 30 min EVERY 10 sec",
                    client.clone(),
                )
                .unwrap();
            tb.sim.run_until(SimTime::from_secs(400));
            let report = requester.factory().monitor().failover_report(tb.sim.now());
            let items: Vec<String> =
                client.items_for(id).iter().map(|i| i.to_string()).collect();
            (report.to_string(), items, injector.transitions_applied())
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a.0, &b.0);
        prop_assert_eq!(&a.1, &b.1);
        prop_assert_eq!(a.2, b.2);
    }

    /// `EventKey`'s ordering is exactly the lexicographic order on
    /// `(time, actor, seq)` — a total order, antisymmetric and
    /// transitive, with no partition component to leak.
    #[test]
    fn event_key_order_is_lexicographic(
        keys in proptest::collection::vec((0u64..5000, 0u64..64, 0u64..1000), 2..40),
    ) {
        let mut keys: Vec<simkit::EventKey> = keys
            .into_iter()
            .map(|(t, a, s)| simkit::EventKey {
                time: SimTime::from_micros(t),
                actor: ActorId(a),
                seq: s,
            })
            .collect();
        let mut tuples: Vec<(SimTime, u64, u64)> =
            keys.iter().map(|k| (k.time, k.actor.0, k.seq)).collect();
        keys.sort();
        tuples.sort();
        for (k, t) in keys.iter().zip(&tuples) {
            prop_assert_eq!((k.time, k.actor.0, k.seq), *t);
        }
        for w in keys.windows(2) {
            prop_assert!(w[0] <= w[1]);
            prop_assert_eq!(w[0] < w[1], !(w[1] <= w[0]) || w[0] != w[1]);
        }
    }

    /// No event is lost or duplicated by the cross-shard merge: for a
    /// random schedule of forward chains, the executed-event count, the
    /// delivery count and the multiset of (actor, payload) observations
    /// all equal what the plan predicts.
    #[test]
    fn sharded_merge_loses_and_duplicates_nothing(plan in shard_plan()) {
        let expected_events: u64 = plan.iter().map(|(_, _, _, h)| 1 + h.len() as u64).sum();
        let expected_deliveries: u64 = plan.iter().map(|(_, _, _, h)| h.len() as u64).sum();
        let mut expected_obs: Vec<(u64, u32)> = Vec::new();
        for (actor, _, payload, hops) in &plan {
            expected_obs.push((u64::from(*actor), *payload));
            let mut p = *payload;
            for (dest, _) in hops {
                p = p.wrapping_add(1);
                expected_obs.push((u64::from(*dest), p));
            }
        }
        expected_obs.sort_unstable();

        let (logs, events, delivered, dead) = run_plan(&plan, 3, 2);
        prop_assert_eq!(events, expected_events);
        prop_assert_eq!(delivered, expected_deliveries);
        prop_assert_eq!(dead, 0);
        let mut observed: Vec<(u64, u32)> = logs
            .iter()
            .enumerate()
            .flat_map(|(a, log)| log.iter().map(move |p| (a as u64, *p)))
            .collect();
        observed.sort_unstable();
        prop_assert_eq!(observed, expected_obs);
    }

    /// Merge commutativity with the sequential engine: any partition of
    /// the same plan — including oversubscribed worker counts — produces
    /// the sequential engine's per-actor logs, in the same order, with
    /// the same counters.
    #[test]
    fn sharded_merge_matches_sequential_engine(plan in shard_plan()) {
        let reference = run_plan(&plan, 1, 1);
        for (shards, threads) in [(2u32, 1u32), (2, 3), (5, 2), (8, 8), (16, 4)] {
            let sharded = run_plan(&plan, shards, threads);
            prop_assert!(
                sharded == reference,
                "{shards} shards x {threads} threads diverged from sequential"
            );
        }
    }

    /// The dedup window is an exactly-once filter on an at-least-once
    /// stream: for any schedule of duplicated, arbitrarily reordered
    /// in-window packets, no `(origin, n)` is ever admitted twice, and
    /// none is lost — first copy `Fresh`, every other copy `Duplicate`.
    #[test]
    fn dedup_never_double_delivers_under_duplication_and_reorder(
        stream in proptest::collection::vec((0u64..6, 0u64..120), 1..250),
    ) {
        use std::collections::BTreeMap;
        let mut win = DedupWindow::new(8);
        let mut fresh_seen: BTreeMap<(u64, u64), u32> = BTreeMap::new();
        for &(origin, n) in &stream {
            let seq = PacketSeq::new(origin, n + 1);
            let was_seen = win.seen(seq);
            let verdict = win.observe(seq);
            // seen() is the pure preview of observe()'s verdict.
            prop_assert_eq!(was_seen, verdict == brokerd::SeqVerdict::Duplicate);
            if verdict == brokerd::SeqVerdict::Fresh {
                *fresh_seen.entry((origin, n)).or_insert(0) += 1;
            }
        }
        // Never twice…
        for (&(origin, n), &count) in &fresh_seen {
            prop_assert!(
                count <= 1,
                "({origin}, {n}) admitted {count} times — double delivery"
            );
        }
        // …and, because every n fits inside SEQ_WINDOW, never lost.
        let mut distinct: Vec<(u64, u64)> = stream.clone();
        distinct.sort_unstable();
        distinct.dedup();
        // An unequal count here means an in-window packet was lost.
        prop_assert_eq!(fresh_seen.len(), distinct.len());
        prop_assert_eq!(win.admitted() + win.suppressed(), stream.len() as u64);
    }

    /// Crash recovery loses no subscription: renewing every lease of a
    /// wiped broker rebuilds the full table — in *any* renewal order
    /// the live set comes back complete without stacking duplicates,
    /// and replaying the original order reproduces the pre-crash
    /// anti-entropy digest bit for bit.
    #[test]
    fn restart_plus_renewal_loses_no_subscription(
        subs in proptest::collection::vec((0u64..40, 0u8..12, 0u8..3), 1..30),
        lease_secs in 30u64..600,
    ) {
        let now = SimTime::from_secs(10);
        let expiry = SimTime::from_secs(10 + lease_secs);
        let mode_of = |tag: u8| match tag {
            0 => SubMode::Event,
            1 => SubMode::OneShot,
            _ => SubMode::Periodic(SimDuration::from_secs(30)),
        };
        let mut before = BrokerNode::new(BrokerId(0), NodeConfig::default());
        for &(subscriber, ty, tag) in &subs {
            before.subscribe_renewing(
                subscriber,
                &format!("ctx{ty}"),
                mode_of(tag),
                expiry,
                now,
            );
        }
        let pre_digest = before.table_digest();
        let pre_count = before.subscriptions();
        let mut distinct = subs.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(pre_count, distinct.len());

        // The crash: a brand-new node with empty tables. Devices renew
        // every lease they hold in a scrambled order; the live set must
        // come back complete, with first renewals re-registering
        // (renewed = false) and repeats extending idempotently.
        let mut scrambled = BrokerNode::new(BrokerId(0), NodeConfig::default());
        let mut renewals = subs.clone();
        renewals.sort_by_key(|&(s, ty, tag)| (u64::from(ty) << 32) ^ s ^ u64::from(tag));
        let mut seen: Vec<(u64, u8, u8)> = Vec::new();
        for &(subscriber, ty, tag) in &renewals {
            let (_, renewed) = scrambled.subscribe_renewing(
                subscriber,
                &format!("ctx{ty}"),
                mode_of(tag),
                expiry,
                now,
            );
            prop_assert_eq!(renewed, seen.contains(&(subscriber, ty, tag)));
            seen.push((subscriber, ty, tag));
        }
        prop_assert_eq!(scrambled.subscriptions(), pre_count);

        // Replaying the renewals in the original order reproduces the
        // pre-crash digest exactly — the anti-entropy convergence
        // witness a healed fleet's directory agrees on.
        let mut replayed = BrokerNode::new(BrokerId(0), NodeConfig::default());
        for &(subscriber, ty, tag) in &subs {
            replayed.subscribe_renewing(
                subscriber,
                &format!("ctx{ty}"),
                mode_of(tag),
                expiry,
                now,
            );
        }
        prop_assert_eq!(replayed.subscriptions(), pre_count);
        prop_assert_eq!(replayed.table_digest(), pre_digest);
    }

    /// Chaos is partition-invariant: for any seed, the chaotic fleet's
    /// full report — link-fault counters, retries, dedup suppressions,
    /// restart recovery and all — is byte-identical across {1,4} engine
    /// shards times {1,4} worker threads, trace digest included.
    #[test]
    fn chaos_transcripts_are_identical_across_partitionings(seed in 0u64..100_000) {
        let reference = run_fleet(&chaos_fleet(seed, 1, 1));
        for (shards, threads) in [(1u32, 4u32), (4, 1), (4, 4)] {
            let got = run_fleet(&chaos_fleet(seed, shards, threads));
            prop_assert!(
                got.report() == reference.report(),
                "chaos transcript diverged at {shards} shards x {threads} threads"
            );
            prop_assert_eq!(got.trace_digest, reference.trace_digest);
        }
    }
}
