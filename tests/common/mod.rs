//! Shared transcript machinery for the determinism suites.
//!
//! [`run_fig5_transcript`] runs the Fig. 5 BT-GPS outage scenario on a
//! testbed partitioned into `shards` ordering domains and renders
//! everything observable about the run into one string: event counts,
//! the mechanism-switch timeline, every delivered item, the serialized
//! `FailoverReport`, the obskit metrics/span exports, the benchkit
//! scenario JSON and a fully-sampled tracekit trace export from a small
//! broker fleet. Both `tests/determinism.rs` (same seed ⇒ same bytes)
//! and `tests/shard_determinism.rs` (same seed ⇒ same bytes *for every
//! shard count*) compare these transcripts byte-for-byte.

use benchkit::{Measurement, Unit};
use contory::{CollectingClient, CxtItem, CxtValue, Mechanism, Trust};
use radio::Position;
use simkit::{FaultPlan, SimDuration, SimTime};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use testbed::{PhoneSetup, Testbed};

/// Runs the Fig. 5 BT-GPS outage scenario on a `shards`-way partitioned
/// testbed and renders everything observable about the run into one
/// string.
pub fn run_fig5_transcript(seed: u64, shards: u32) -> String {
    // Observability: the obskit exports and the benchkit scenario-report
    // JSON are part of the transcript, so a nondeterministic counter,
    // span id, float rendering or export ordering diffs too.
    let mut ctx = benchkit::RunCtx::new(
        "fig5_failover_transcript",
        "Fig. 5 determinism transcript",
        "Fig. 5",
        seed,
    );
    let obs = ctx.obs().clone();
    let _obs_guard = obs.install();
    let tb = Testbed::with_seed_and_shards(seed, shards);
    let phone = tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630("sailor", Position::new(0.0, 0.0))
    });
    let gps = tb.add_bt_gps(Position::new(2.0, 0.0), SimDuration::from_secs(5));
    let neighbor = tb.add_phone(PhoneSetup {
        metered: false,
        ..PhoneSetup::nokia6630("neighbor", Position::new(6.0, 0.0))
    });
    neighbor.factory().register_cxt_server("app");
    {
        let factory = neighbor.factory().clone();
        let world = tb.world.clone();
        let node = neighbor.node();
        let sim = tb.sim.clone();
        tb.sim.schedule_repeating(SimDuration::from_secs(10), move || {
            if let Some(p) = world.position_of(node) {
                let _ = factory.publish_cxt_item(
                    CxtItem::new("location", CxtValue::Position { x: p.x, y: p.y }, sim.now())
                        .with_accuracy(30.0)
                        .with_trust(Trust::Community),
                    None,
                );
            }
            true
        });
    }

    let client = Rc::new(CollectingClient::new());
    let id = phone
        .submit(
            "SELECT location FROM intSensor DURATION 2 hour EVERY 5 sec",
            client.clone(),
        )
        .expect("query accepted");

    // Sampled mechanism timeline (collapsed to switches below).
    let timeline: Rc<RefCell<Vec<(SimTime, Option<Mechanism>)>>> =
        Rc::new(RefCell::new(Vec::new()));
    {
        let timeline = timeline.clone();
        let factory = phone.factory().clone();
        let sim = tb.sim.clone();
        tb.sim.schedule_repeating(SimDuration::from_secs(1), move || {
            timeline.borrow_mut().push((sim.now(), factory.mechanism_of(id)));
            true
        });
    }

    // GPS dark between t = 155 s and t = 330 s, via the deterministic
    // fault-injection subsystem.
    let mut plan = FaultPlan::new(seed);
    plan.down_between("gps", SimTime::from_secs(155), SimTime::from_secs(330));
    let injector = tb.install_faults(&plan);
    {
        let gps2 = gps.clone();
        injector.register("gps", move |up| gps2.set_powered(up));
    }
    tb.sim.run_until(SimTime::from_secs(520));

    // Render the transcript: anything nondeterministic in the stack
    // perturbs at least one of these sections.
    let mut out = String::new();
    let _ = writeln!(out, "seed={seed}");
    let _ = writeln!(out, "events_processed={}", tb.sim.events_processed());

    let _ = writeln!(out, "-- mechanism switches --");
    let mut last: Option<Option<Mechanism>> = None;
    for (t, m) in timeline.borrow().iter() {
        if last.as_ref() != Some(m) {
            let label = m.map_or_else(|| "(none)".to_owned(), |m| m.to_string());
            let _ = writeln!(out, "t={t} -> {label}");
            last = Some(*m);
        }
    }

    let _ = writeln!(out, "-- delivered items --");
    for item in client.items_for(id) {
        let _ = writeln!(out, "{item:?}");
    }

    let report = phone.factory().monitor().failover_report(tb.sim.now());
    let _ = writeln!(out, "-- failover report (display) --");
    let _ = writeln!(out, "{report}");
    let _ = writeln!(out, "-- failover report (debug) --");
    let _ = writeln!(out, "{report:#?}");

    // obskit exports: metrics snapshot + full span stream, byte for byte.
    let _ = writeln!(out, "-- obskit metrics snapshot --");
    let _ = writeln!(out, "{}", obs.metrics_snapshot());
    let _ = writeln!(out, "-- obskit spans (jsonl) --");
    let _ = writeln!(out, "{}", obs.spans_jsonl());

    // benchkit export: the same run assembled into a scenario report and
    // rendered as `BENCH_contory.json` would render it — the bench JSON
    // is part of the byte-identity contract.
    ctx.tally_sim(&tb.sim);
    let items = client.items_for(id);
    ctx.push(Measurement::scalar(
        "items_delivered",
        "location items delivered",
        Unit::Count,
        items.len() as f64,
    ));
    if let Some(row) = report.get(id) {
        ctx.push(Measurement::scalar(
            "gap_max_s",
            "longest provisioning gap",
            Unit::Secs,
            row.gap_max.as_secs_f64(),
        ));
        ctx.check_band(
            "gap_slo",
            "longest provisioning gap within the 45 s SLO",
            row.gap_max.as_secs_f64(),
            None,
            Some(45.0),
            Unit::Secs,
        );
    }
    let _ = writeln!(out, "-- benchkit scenario report (json) --");
    let _ = writeln!(out, "{}", ctx.finish().to_json().render());

    // tracekit export: a small fully-sampled broker fleet partitioned on
    // the same shard count. The trace plane is partition-invariant, so
    // the canonical JSONL export, its digest and the assembled break-up
    // are part of the byte-identity contract too. (Runs after the obskit
    // sections are rendered, so inline-vs-worker span mirroring cannot
    // perturb them.)
    let mut node = brokerd::NodeConfig::default();
    node.trace_sample_log2 = 0;
    let fleet = brokerd::run_fleet(&brokerd::FleetConfig {
        seed: seed ^ 0x77ace,
        brokers: 3,
        devices: 60,
        shards: shards.max(1),
        threads: if shards > 1 { 2 } else { 1 },
        run_for: SimDuration::from_secs(5),
        node,
        ..brokerd::FleetConfig::default()
    });
    let _ = writeln!(out, "-- tracekit fleet report --");
    let _ = writeln!(out, "{}", fleet.report());
    let _ = writeln!(out, "-- tracekit trace export (jsonl) --");
    let _ = write!(out, "{}", fleet.trace.export_jsonl());
    let _ = writeln!(out, "trace_digest={:016x}", fleet.trace.digest());
    let breakup = tracekit::Breakup::of(&tracekit::assemble(&fleet.trace));
    let _ = writeln!(out, "-- trace break-up (json) --");
    let _ = writeln!(out, "{}", breakup.to_json());
    out
}
