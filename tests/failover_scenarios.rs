//! Failure-scenario integration suite: scripted faults driven through
//! [`simkit::faults`] against the full simulated stack, with recovery
//! behaviour asserted through the middleware's own [`FailoverReport`].
//!
//! Every scenario runs across three fixed seeds and must behave the
//! same way on each — the fault schedules, radios, provisioning and
//! failover machinery are all deterministic. Each scenario additionally
//! runs on a 4-shard partitioned testbed and must render the *identical*
//! `FailoverReport` to the 1-shard run: the partition layout is pure
//! mechanism and must never leak into failover behaviour.
#![deny(warnings)]

use contory::{
    CollectingClient, ContoryError, CxtItem, CxtValue, FactoryConfig, FailoverConfig, Mechanism,
    Trust,
};
use radio::Position;
use simkit::{FaultPlan, SimDuration, SimTime};
use testbed::{PhoneSetup, Testbed, TestbedPhone};
use std::rc::Rc;

const SEEDS: [u64; 3] = [11, 22, 33];

/// Keep a provider phone publishing a fresh `wind` item every `period`.
fn publish_wind(tb: &Testbed, provider: &Rc<TestbedPhone>, period: SimDuration) {
    provider.factory().register_cxt_server("app");
    let factory = provider.factory().clone();
    let sim = tb.sim.clone();
    tb.sim.schedule_repeating(period, move || {
        let _ = factory.publish_cxt_item(
            CxtItem::new("wind", CxtValue::quantity(11.0, "kn"), sim.now())
                .with_accuracy(0.5)
                .with_trust(Trust::Community),
            None,
        );
        true
    });
}

/// BT outage → WiFi takeover. A communicator runs a periodic ad hoc
/// query over Bluetooth; at t = 120 s its BT radio dies for good. The
/// middleware must detect the failure, fail over to the WiFi ad hoc
/// mechanism and keep the provisioning gap below the configured
/// silence-watchdog bound.
#[test]
fn bt_outage_fails_over_to_wifi_within_the_timeout_bound() {
    for seed in SEEDS {
        let report_1 = bt_outage_scenario(seed, 1);
        let report_4 = bt_outage_scenario(seed, 4);
        assert_eq!(report_1, report_4, "seed {seed}: 4-shard report diverged");
    }
}

fn bt_outage_scenario(seed: u64, shards: u32) -> String {
    {
        let tb = Testbed::with_seed_and_shards(seed, shards);
        let period = SimDuration::from_secs(10);
        let silence_periods = 5u32;
        let requester = tb.add_phone(PhoneSetup {
            factory: FactoryConfig {
                failover: FailoverConfig {
                    max_retries: 1,
                    silence_periods,
                    ..FailoverConfig::default()
                },
                ..FactoryConfig::default()
            },
            ..PhoneSetup::nokia9500("req", Position::new(0.0, 0.0))
        });
        let provider = tb.add_phone(PhoneSetup::nokia9500("prov", Position::new(6.0, 0.0)));
        publish_wind(&tb, &provider, period);

        // Scripted, permanent BT failure on the requester at t = 120 s.
        let mut plan = FaultPlan::new(seed);
        plan.kill_at("bt:req", SimTime::from_secs(120));
        let injector = tb.install_faults(&plan);

        tb.sim.run_for(SimDuration::from_secs(5)); // WiFi joins settle
        let client = Rc::new(CollectingClient::new());
        let id = requester
            .submit(
                "SELECT wind FROM adHocNetwork(all,1) DURATION 20 min EVERY 10 sec",
                client.clone(),
            )
            .unwrap();
        assert_eq!(
            requester.factory().mechanism_of(id),
            Some(Mechanism::AdHocBt),
            "seed {seed}: one-hop ad hoc prefers BT"
        );

        tb.sim.run_until(SimTime::from_secs(115));
        let before_fault = client.items_for(id).len();
        assert!(before_fault > 0, "seed {seed}: BT items before the fault");

        tb.sim.run_until(SimTime::from_secs(400));
        assert_eq!(
            requester.factory().mechanism_of(id),
            Some(Mechanism::AdHocWifi),
            "seed {seed}: took over on WiFi"
        );
        assert!(
            client.items_for(id).len() > before_fault,
            "seed {seed}: items kept flowing after the takeover"
        );

        let report = requester.factory().monitor().failover_report(tb.sim.now());
        let row = report.get(id).expect("query tracked");
        assert!(row.failures >= 1, "seed {seed}: BT failure detected");
        assert!(
            row.mechanisms_tried.contains(&Mechanism::AdHocBt)
                && row.mechanisms_tried.contains(&Mechanism::AdHocWifi),
            "seed {seed}: failover trail {:?}",
            row.mechanisms_tried
        );
        // The acceptance bound: the provisioning gap stays below the
        // configured timeout bound (the silence watchdog's detection
        // horizon of `silence_periods` query periods).
        let timeout_bound = period * u64::from(silence_periods);
        assert!(
            row.gap_max <= timeout_bound,
            "seed {seed}: gap {:.1}s exceeds the {:.0}s timeout bound",
            row.gap_max.as_secs_f64(),
            timeout_bound.as_secs_f64()
        );
        assert_eq!(injector.transitions_applied(), 1, "seed {seed}: one kill edge");
        report.to_string()
    }
}

/// Total blackout: every candidate mechanism is dead, so an on-demand
/// query must be rejected with [`ContoryError::AllMechanismsFailed`]
/// (synchronously when the failures cascade inside `submit`, otherwise
/// as a terminal error event on the client).
#[test]
fn total_blackout_terminates_on_demand_query_with_all_mechanisms_failed() {
    for seed in SEEDS {
        let outcome_1 = total_blackout_scenario(seed, 1);
        let outcome_4 = total_blackout_scenario(seed, 4);
        assert_eq!(outcome_1, outcome_4, "seed {seed}: 4-shard outcome diverged");
    }
}

fn total_blackout_scenario(seed: u64, shards: u32) -> String {
    {
        let tb = Testbed::with_seed_and_shards(seed, shards);
        // Nokia 6630, cell radio off, no WiFi, no internal sensors and
        // no neighbours: once BT dies there is nothing left.
        let phone = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("solo", Position::new(0.0, 0.0))
        });
        let mut plan = FaultPlan::new(seed);
        plan.kill_at("bt:solo", SimTime::from_secs(1));
        tb.install_faults(&plan);
        tb.sim.run_for(SimDuration::from_secs(5));

        let client = Rc::new(CollectingClient::new());
        match phone.submit(
            "SELECT wind FROM adHocNetwork(all,1) DURATION 1 samples",
            client.clone(),
        ) {
            Err(e) => {
                assert!(
                    matches!(e, ContoryError::AllMechanismsFailed { .. }),
                    "seed {seed}: unexpected error {e}"
                );
                assert!(
                    e.to_string().contains("all mechanisms failed"),
                    "seed {seed}: {e}"
                );
            }
            Ok(_) => {
                // The BT failure surfaced asynchronously; the cascade
                // must still terminate the query with the same error.
                tb.sim.run_for(SimDuration::from_secs(120));
                assert!(
                    client
                        .errors()
                        .iter()
                        .any(|m| m.contains("all mechanisms failed")),
                    "seed {seed}: expected a terminal error, got {:?}",
                    client.errors()
                );
            }
        }
        assert!(client.all_items().is_empty(), "seed {seed}: nothing delivered");
        // No FailoverReport for a rejected query; the comparable outcome
        // is the full client error stream.
        client.errors().join("\n")
    }
}

/// A *long-running* query under a temporary total blackout is not
/// terminated: it is suspended, excluded from active provisioning, and
/// revived by the recovery probe once the preferred mechanism returns.
#[test]
fn blackout_suspends_long_running_query_then_recovery_probe_revives_it() {
    for seed in SEEDS {
        let report_1 = blackout_suspend_scenario(seed, 1);
        let report_4 = blackout_suspend_scenario(seed, 4);
        assert_eq!(report_1, report_4, "seed {seed}: 4-shard report diverged");
    }
}

fn blackout_suspend_scenario(seed: u64, shards: u32) -> String {
    {
        let tb = Testbed::with_seed_and_shards(seed, shards);
        let requester = tb.add_phone(PhoneSetup {
            metered: false,
            factory: FactoryConfig {
                failover: FailoverConfig {
                    max_retries: 1,
                    silence_periods: 4,
                    ..FailoverConfig::default()
                },
                ..FactoryConfig::default()
            },
            ..PhoneSetup::nokia6630("req", Position::new(0.0, 0.0))
        });
        let provider = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("prov", Position::new(6.0, 0.0))
        });
        publish_wind(&tb, &provider, SimDuration::from_secs(10));

        // BT (the only viable mechanism: cell off, no WiFi) is dark
        // between t = 100 s and t = 250 s.
        let mut plan = FaultPlan::new(seed);
        plan.down_between(
            "bt:req",
            SimTime::from_secs(100),
            SimTime::from_secs(250),
        );
        tb.install_faults(&plan);

        tb.sim.run_for(SimDuration::from_secs(2));
        let client = Rc::new(CollectingClient::new());
        let id = requester
            .submit(
                "SELECT wind FROM adHocNetwork(all,1) DURATION 30 min EVERY 10 sec",
                client.clone(),
            )
            .unwrap();

        tb.sim.run_until(SimTime::from_secs(100));
        let before = client.items_for(id).len();
        assert!(before > 0, "seed {seed}: items before the blackout");

        // Mid-blackout: the query is suspended, not terminated.
        tb.sim.run_until(SimTime::from_secs(220));
        let report = requester.factory().monitor().failover_report(tb.sim.now());
        let row = report.get(id).expect("query tracked");
        assert!(row.suspensions >= 1, "seed {seed}: suspension recorded");
        assert!(row.suspended, "seed {seed}: suspended during the blackout");
        assert!(
            client.items_for(id).len() <= before + 1,
            "seed {seed}: at most one in-flight item after the link went down"
        );

        // Recovery: probes rediscover BT after t = 250 s.
        tb.sim.run_until(SimTime::from_secs(450));
        let report = requester.factory().monitor().failover_report(tb.sim.now());
        let row = report.get(id).expect("query tracked");
        assert!(!row.suspended, "seed {seed}: revived after the blackout");
        assert_eq!(
            requester.factory().mechanism_of(id),
            Some(Mechanism::AdHocBt),
            "seed {seed}: back on BT ad hoc provisioning"
        );
        assert!(
            client.items_for(id).len() > before,
            "seed {seed}: items resumed after recovery"
        );
        report.to_string()
    }
}

/// Broker outage: an infrastructure query goes silent while the Fuego
/// broker is down. The silence watchdog detects it, the query ends up
/// suspended (no viable alternative), and provisioning resumes once the
/// broker is back.
#[test]
fn broker_outage_suspends_infra_query_and_resumes_after() {
    for seed in SEEDS {
        let report_1 = broker_outage_scenario(seed, 1);
        let report_4 = broker_outage_scenario(seed, 4);
        assert_eq!(report_1, report_4, "seed {seed}: 4-shard report diverged");
    }
}

fn broker_outage_scenario(seed: u64, shards: u32) -> String {
    {
        let tb = Testbed::with_seed_and_shards(seed, shards);
        tb.add_weather_station(
            "fmi-harmaja",
            Position::new(2_000.0, 1_000.0),
            &[sensors::EnvField::WindKnots],
            SimDuration::from_secs(20),
        );
        tb.sim.run_for(SimDuration::from_secs(40));
        let phone = tb.add_phone(PhoneSetup {
            cell_on: true,
            metered: false,
            factory: FactoryConfig {
                failover: FailoverConfig {
                    max_retries: 0,
                    silence_periods: 2,
                    ..FailoverConfig::default()
                },
                // Probe lazily so the silence watchdog can exhaust the
                // (peer-less) BT fallback before the probe revives the
                // preferred mechanism — the query must visibly suspend.
                recovery_probe: SimDuration::from_secs(60),
                ..FactoryConfig::default()
            },
            ..PhoneSetup::nokia6630("sailor", Position::new(0.0, 0.0))
        });

        let mut plan = FaultPlan::new(seed);
        plan.down_between("broker", SimTime::from_secs(160), SimTime::from_secs(340));
        tb.install_faults(&plan);

        let client = Rc::new(CollectingClient::new());
        let id = phone
            .submit(
                "SELECT wind FROM extInfra DURATION 30 min EVERY 15 sec",
                client.clone(),
            )
            .unwrap();
        assert_eq!(phone.factory().mechanism_of(id), Some(Mechanism::Infra));

        tb.sim.run_until(SimTime::from_secs(155));
        let before = client.items_for(id).len();
        assert!(before > 0, "seed {seed}: infra items before the outage");

        // Deep in the outage nothing is delivered (the broker drops
        // every frame) and the watchdog has flagged the silence.
        tb.sim.run_until(SimTime::from_secs(340));
        let during = client.items_for(id).len();
        let report = phone.factory().monitor().failover_report(tb.sim.now());
        let row = report.get(id).expect("query tracked");
        assert!(row.failures >= 1, "seed {seed}: silence detected");
        assert!(
            row.suspensions >= 1,
            "seed {seed}: suspended while the broker was dark"
        );
        assert!(
            during <= before + 1,
            "seed {seed}: at most one in-flight item around the cut ({before} -> {during})"
        );

        // After the broker returns, the probe/reassign cycle restores
        // infrastructure provisioning.
        tb.sim.run_until(SimTime::from_secs(640));
        assert!(
            client.items_for(id).len() > during,
            "seed {seed}: infra items resumed after the outage"
        );
        assert_eq!(
            phone.factory().mechanism_of(id),
            Some(Mechanism::Infra),
            "seed {seed}: back on extInfra"
        );
        phone.factory().monitor().failover_report(tb.sim.now()).to_string()
    }
}

/// Flapping BT link: exponential backoff keeps the middleware from
/// thrashing — the number of reassignments stays bounded by the number
/// of scripted down-edges, retries are exercised, and provisioning
/// still recovers once the link stabilises.
#[test]
fn flapping_link_backoff_bounds_reassignments() {
    for seed in SEEDS {
        let report_1 = flapping_link_scenario(seed, 1);
        let report_4 = flapping_link_scenario(seed, 4);
        assert_eq!(report_1, report_4, "seed {seed}: 4-shard report diverged");
    }
}

fn flapping_link_scenario(seed: u64, shards: u32) -> String {
    {
        let tb = Testbed::with_seed_and_shards(seed, shards);
        let requester = tb.add_phone(PhoneSetup {
            metered: false,
            factory: FactoryConfig {
                failover: FailoverConfig {
                    max_retries: 2,
                    silence_periods: 4,
                    ..FailoverConfig::default()
                },
                ..FactoryConfig::default()
            },
            ..PhoneSetup::nokia6630("req", Position::new(0.0, 0.0))
        });
        let provider = tb.add_phone(PhoneSetup {
            metered: false,
            ..PhoneSetup::nokia6630("prov", Position::new(6.0, 0.0))
        });
        publish_wind(&tb, &provider, SimDuration::from_secs(10));

        let mut plan = FaultPlan::new(seed);
        plan.flap_random(
            "bt:req",
            SimTime::from_secs(60),
            SimTime::from_secs(360),
            SimDuration::from_secs(45),
            SimDuration::from_secs(10),
        );
        let downs = plan
            .edges("bt:req")
            .iter()
            .filter(|e| !e.up)
            .count();
        tb.install_faults(&plan);

        tb.sim.run_for(SimDuration::from_secs(2));
        let client = Rc::new(CollectingClient::new());
        let id = requester
            .submit(
                "SELECT wind FROM adHocNetwork(all,1) DURATION 30 min EVERY 10 sec",
                client.clone(),
            )
            .unwrap();

        tb.sim.run_until(SimTime::from_secs(600));
        let report = requester.factory().monitor().failover_report(tb.sim.now());
        let row = report.get(id).expect("query tracked");
        // Thrash bound: each scripted down-edge accounts for at most a
        // handful of reassignments (failover attempt, probe-driven
        // revival, possible re-failure on a short up-phase); backoff
        // retries absorb repeated failures instead of spawning fresh
        // reassignments.
        assert!(
            (row.switches as usize) <= 3 * downs + 3,
            "seed {seed}: {} switches for {downs} down-edges — thrashing",
            row.switches
        );
        if row.failures > row.switches {
            assert!(
                row.retries >= 1,
                "seed {seed}: repeated failures should exercise backoff retries"
            );
        }
        // The link is stable after t = 360 s: provisioning recovered.
        let end = client.items_for(id).len();
        tb.sim.run_until(SimTime::from_secs(700));
        assert!(
            client.items_for(id).len() > end,
            "seed {seed}: items flowing after the flapping stops"
        );
        requester.factory().monitor().failover_report(tb.sim.now()).to_string()
    }
}
