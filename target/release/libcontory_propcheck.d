/root/repo/target/release/libcontory_propcheck.rlib: /root/repo/crates/propcheck/src/lib.rs
