/root/repo/target/release/deps/contory_bench-b9fad6e986f4d973.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcontory_bench-b9fad6e986f4d973.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcontory_bench-b9fad6e986f4d973.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
