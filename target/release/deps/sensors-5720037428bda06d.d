/root/repo/target/release/deps/sensors-5720037428bda06d.d: crates/sensors/src/lib.rs crates/sensors/src/btgps.rs crates/sensors/src/env.rs crates/sensors/src/gps.rs crates/sensors/src/sensor.rs

/root/repo/target/release/deps/libsensors-5720037428bda06d.rlib: crates/sensors/src/lib.rs crates/sensors/src/btgps.rs crates/sensors/src/env.rs crates/sensors/src/gps.rs crates/sensors/src/sensor.rs

/root/repo/target/release/deps/libsensors-5720037428bda06d.rmeta: crates/sensors/src/lib.rs crates/sensors/src/btgps.rs crates/sensors/src/env.rs crates/sensors/src/gps.rs crates/sensors/src/sensor.rs

crates/sensors/src/lib.rs:
crates/sensors/src/btgps.rs:
crates/sensors/src/env.rs:
crates/sensors/src/gps.rs:
crates/sensors/src/sensor.rs:
