/root/repo/target/release/deps/sailing-f2f5c94e0824b137.d: crates/sailing/src/lib.rs crates/sailing/src/regatta.rs crates/sailing/src/scenario.rs crates/sailing/src/weather.rs

/root/repo/target/release/deps/libsailing-f2f5c94e0824b137.rlib: crates/sailing/src/lib.rs crates/sailing/src/regatta.rs crates/sailing/src/scenario.rs crates/sailing/src/weather.rs

/root/repo/target/release/deps/libsailing-f2f5c94e0824b137.rmeta: crates/sailing/src/lib.rs crates/sailing/src/regatta.rs crates/sailing/src/scenario.rs crates/sailing/src/weather.rs

crates/sailing/src/lib.rs:
crates/sailing/src/regatta.rs:
crates/sailing/src/scenario.rs:
crates/sailing/src/weather.rs:
