/root/repo/target/release/deps/ablation_merging-1a1b1ea1400aa79a.d: crates/bench/src/bin/ablation_merging.rs

/root/repo/target/release/deps/ablation_merging-1a1b1ea1400aa79a: crates/bench/src/bin/ablation_merging.rs

crates/bench/src/bin/ablation_merging.rs:
