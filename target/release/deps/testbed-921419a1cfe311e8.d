/root/repo/target/release/deps/testbed-921419a1cfe311e8.d: crates/testbed/src/lib.rs crates/testbed/src/convert.rs crates/testbed/src/harness.rs crates/testbed/src/refs_impl.rs crates/testbed/src/scenario.rs

/root/repo/target/release/deps/libtestbed-921419a1cfe311e8.rlib: crates/testbed/src/lib.rs crates/testbed/src/convert.rs crates/testbed/src/harness.rs crates/testbed/src/refs_impl.rs crates/testbed/src/scenario.rs

/root/repo/target/release/deps/libtestbed-921419a1cfe311e8.rmeta: crates/testbed/src/lib.rs crates/testbed/src/convert.rs crates/testbed/src/harness.rs crates/testbed/src/refs_impl.rs crates/testbed/src/scenario.rs

crates/testbed/src/lib.rs:
crates/testbed/src/convert.rs:
crates/testbed/src/harness.rs:
crates/testbed/src/refs_impl.rs:
crates/testbed/src/scenario.rs:
