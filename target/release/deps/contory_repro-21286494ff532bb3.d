/root/repo/target/release/deps/contory_repro-21286494ff532bb3.d: src/lib.rs

/root/repo/target/release/deps/libcontory_repro-21286494ff532bb3.rlib: src/lib.rs

/root/repo/target/release/deps/libcontory_repro-21286494ff532bb3.rmeta: src/lib.rs

src/lib.rs:
