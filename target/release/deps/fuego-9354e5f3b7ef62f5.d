/root/repo/target/release/deps/fuego-9354e5f3b7ef62f5.d: crates/fuego/src/lib.rs crates/fuego/src/broker.rs crates/fuego/src/client.rs crates/fuego/src/event.rs crates/fuego/src/infra.rs crates/fuego/src/xml.rs

/root/repo/target/release/deps/libfuego-9354e5f3b7ef62f5.rlib: crates/fuego/src/lib.rs crates/fuego/src/broker.rs crates/fuego/src/client.rs crates/fuego/src/event.rs crates/fuego/src/infra.rs crates/fuego/src/xml.rs

/root/repo/target/release/deps/libfuego-9354e5f3b7ef62f5.rmeta: crates/fuego/src/lib.rs crates/fuego/src/broker.rs crates/fuego/src/client.rs crates/fuego/src/event.rs crates/fuego/src/infra.rs crates/fuego/src/xml.rs

crates/fuego/src/lib.rs:
crates/fuego/src/broker.rs:
crates/fuego/src/client.rs:
crates/fuego/src/event.rs:
crates/fuego/src/infra.rs:
crates/fuego/src/xml.rs:
