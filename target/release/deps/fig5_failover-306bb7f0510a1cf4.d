/root/repo/target/release/deps/fig5_failover-306bb7f0510a1cf4.d: crates/bench/src/bin/fig5_failover.rs

/root/repo/target/release/deps/fig5_failover-306bb7f0510a1cf4: crates/bench/src/bin/fig5_failover.rs

crates/bench/src/bin/fig5_failover.rs:
