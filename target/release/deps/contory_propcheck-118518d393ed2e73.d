/root/repo/target/release/deps/contory_propcheck-118518d393ed2e73.d: crates/propcheck/src/lib.rs

/root/repo/target/release/deps/libcontory_propcheck-118518d393ed2e73.rlib: crates/propcheck/src/lib.rs

/root/repo/target/release/deps/libcontory_propcheck-118518d393ed2e73.rmeta: crates/propcheck/src/lib.rs

crates/propcheck/src/lib.rs:
