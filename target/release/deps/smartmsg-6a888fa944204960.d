/root/repo/target/release/deps/smartmsg-6a888fa944204960.d: crates/smartmsg/src/lib.rs crates/smartmsg/src/finder.rs crates/smartmsg/src/program.rs crates/smartmsg/src/runtime.rs crates/smartmsg/src/tag.rs

/root/repo/target/release/deps/libsmartmsg-6a888fa944204960.rlib: crates/smartmsg/src/lib.rs crates/smartmsg/src/finder.rs crates/smartmsg/src/program.rs crates/smartmsg/src/runtime.rs crates/smartmsg/src/tag.rs

/root/repo/target/release/deps/libsmartmsg-6a888fa944204960.rmeta: crates/smartmsg/src/lib.rs crates/smartmsg/src/finder.rs crates/smartmsg/src/program.rs crates/smartmsg/src/runtime.rs crates/smartmsg/src/tag.rs

crates/smartmsg/src/lib.rs:
crates/smartmsg/src/finder.rs:
crates/smartmsg/src/program.rs:
crates/smartmsg/src/runtime.rs:
crates/smartmsg/src/tag.rs:
