/root/repo/target/release/deps/simkit-b163c6e9cf8f0d0a.d: crates/simkit/src/lib.rs crates/simkit/src/faults.rs crates/simkit/src/rng.rs crates/simkit/src/sim.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs crates/simkit/src/trace.rs

/root/repo/target/release/deps/libsimkit-b163c6e9cf8f0d0a.rlib: crates/simkit/src/lib.rs crates/simkit/src/faults.rs crates/simkit/src/rng.rs crates/simkit/src/sim.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs crates/simkit/src/trace.rs

/root/repo/target/release/deps/libsimkit-b163c6e9cf8f0d0a.rmeta: crates/simkit/src/lib.rs crates/simkit/src/faults.rs crates/simkit/src/rng.rs crates/simkit/src/sim.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs crates/simkit/src/trace.rs

crates/simkit/src/lib.rs:
crates/simkit/src/faults.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/sim.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
crates/simkit/src/trace.rs:
