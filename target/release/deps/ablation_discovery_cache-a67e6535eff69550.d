/root/repo/target/release/deps/ablation_discovery_cache-a67e6535eff69550.d: crates/bench/src/bin/ablation_discovery_cache.rs

/root/repo/target/release/deps/ablation_discovery_cache-a67e6535eff69550: crates/bench/src/bin/ablation_discovery_cache.rs

crates/bench/src/bin/ablation_discovery_cache.rs:
