/root/repo/target/release/deps/sm_breakup-d366e1d3b2c74b33.d: crates/bench/src/bin/sm_breakup.rs

/root/repo/target/release/deps/sm_breakup-d366e1d3b2c74b33: crates/bench/src/bin/sm_breakup.rs

crates/bench/src/bin/sm_breakup.rs:
