/root/repo/target/release/deps/phone-51bc347fc4d27bc0.d: crates/phone/src/lib.rs crates/phone/src/battery.rs crates/phone/src/device.rs crates/phone/src/memory.rs crates/phone/src/meter.rs crates/phone/src/power.rs crates/phone/src/profiles.rs crates/phone/src/units.rs

/root/repo/target/release/deps/libphone-51bc347fc4d27bc0.rlib: crates/phone/src/lib.rs crates/phone/src/battery.rs crates/phone/src/device.rs crates/phone/src/memory.rs crates/phone/src/meter.rs crates/phone/src/power.rs crates/phone/src/profiles.rs crates/phone/src/units.rs

/root/repo/target/release/deps/libphone-51bc347fc4d27bc0.rmeta: crates/phone/src/lib.rs crates/phone/src/battery.rs crates/phone/src/device.rs crates/phone/src/memory.rs crates/phone/src/meter.rs crates/phone/src/power.rs crates/phone/src/profiles.rs crates/phone/src/units.rs

crates/phone/src/lib.rs:
crates/phone/src/battery.rs:
crates/phone/src/device.rs:
crates/phone/src/memory.rs:
crates/phone/src/meter.rs:
crates/phone/src/power.rs:
crates/phone/src/profiles.rs:
crates/phone/src/units.rs:
