/root/repo/target/release/deps/fig4_power_trace-0169851f27646e77.d: crates/bench/src/bin/fig4_power_trace.rs

/root/repo/target/release/deps/fig4_power_trace-0169851f27646e77: crates/bench/src/bin/fig4_power_trace.rs

crates/bench/src/bin/fig4_power_trace.rs:
