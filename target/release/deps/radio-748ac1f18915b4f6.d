/root/repo/target/release/deps/radio-748ac1f18915b4f6.d: crates/radio/src/lib.rs crates/radio/src/bt.rs crates/radio/src/cell.rs crates/radio/src/wifi.rs crates/radio/src/world.rs

/root/repo/target/release/deps/libradio-748ac1f18915b4f6.rlib: crates/radio/src/lib.rs crates/radio/src/bt.rs crates/radio/src/cell.rs crates/radio/src/wifi.rs crates/radio/src/world.rs

/root/repo/target/release/deps/libradio-748ac1f18915b4f6.rmeta: crates/radio/src/lib.rs crates/radio/src/bt.rs crates/radio/src/cell.rs crates/radio/src/wifi.rs crates/radio/src/world.rs

crates/radio/src/lib.rs:
crates/radio/src/bt.rs:
crates/radio/src/cell.rs:
crates/radio/src/wifi.rs:
crates/radio/src/world.rs:
