/root/repo/target/release/deps/table1_latency-3ddf3d03058c667e.d: crates/bench/src/bin/table1_latency.rs

/root/repo/target/release/deps/table1_latency-3ddf3d03058c667e: crates/bench/src/bin/table1_latency.rs

crates/bench/src/bin/table1_latency.rs:
