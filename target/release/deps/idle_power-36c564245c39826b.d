/root/repo/target/release/deps/idle_power-36c564245c39826b.d: crates/bench/src/bin/idle_power.rs

/root/repo/target/release/deps/idle_power-36c564245c39826b: crates/bench/src/bin/idle_power.rs

crates/bench/src/bin/idle_power.rs:
