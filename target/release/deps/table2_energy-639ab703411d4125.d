/root/repo/target/release/deps/table2_energy-639ab703411d4125.d: crates/bench/src/bin/table2_energy.rs

/root/repo/target/release/deps/table2_energy-639ab703411d4125: crates/bench/src/bin/table2_energy.rs

crates/bench/src/bin/table2_energy.rs:
