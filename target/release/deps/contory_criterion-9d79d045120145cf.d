/root/repo/target/release/deps/contory_criterion-9d79d045120145cf.d: crates/crit/src/lib.rs

/root/repo/target/release/deps/libcontory_criterion-9d79d045120145cf.rlib: crates/crit/src/lib.rs

/root/repo/target/release/deps/libcontory_criterion-9d79d045120145cf.rmeta: crates/crit/src/lib.rs

crates/crit/src/lib.rs:
