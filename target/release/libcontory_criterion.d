/root/repo/target/release/libcontory_criterion.rlib: /root/repo/crates/crit/src/lib.rs
