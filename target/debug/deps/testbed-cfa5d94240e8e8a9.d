/root/repo/target/debug/deps/testbed-cfa5d94240e8e8a9.d: crates/testbed/src/lib.rs crates/testbed/src/convert.rs crates/testbed/src/harness.rs crates/testbed/src/refs_impl.rs crates/testbed/src/scenario.rs

/root/repo/target/debug/deps/libtestbed-cfa5d94240e8e8a9.rlib: crates/testbed/src/lib.rs crates/testbed/src/convert.rs crates/testbed/src/harness.rs crates/testbed/src/refs_impl.rs crates/testbed/src/scenario.rs

/root/repo/target/debug/deps/libtestbed-cfa5d94240e8e8a9.rmeta: crates/testbed/src/lib.rs crates/testbed/src/convert.rs crates/testbed/src/harness.rs crates/testbed/src/refs_impl.rs crates/testbed/src/scenario.rs

crates/testbed/src/lib.rs:
crates/testbed/src/convert.rs:
crates/testbed/src/harness.rs:
crates/testbed/src/refs_impl.rs:
crates/testbed/src/scenario.rs:
