/root/repo/target/debug/deps/contory_criterion-525f38d95d15a824.d: crates/crit/src/lib.rs

/root/repo/target/debug/deps/libcontory_criterion-525f38d95d15a824.rlib: crates/crit/src/lib.rs

/root/repo/target/debug/deps/libcontory_criterion-525f38d95d15a824.rmeta: crates/crit/src/lib.rs

crates/crit/src/lib.rs:
