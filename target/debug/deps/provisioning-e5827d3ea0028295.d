/root/repo/target/debug/deps/provisioning-e5827d3ea0028295.d: crates/bench/benches/provisioning.rs

/root/repo/target/debug/deps/provisioning-e5827d3ea0028295: crates/bench/benches/provisioning.rs

crates/bench/benches/provisioning.rs:
