/root/repo/target/debug/deps/table2_energy-4c1c9f7f81badc62.d: crates/bench/src/bin/table2_energy.rs

/root/repo/target/debug/deps/table2_energy-4c1c9f7f81badc62: crates/bench/src/bin/table2_energy.rs

crates/bench/src/bin/table2_energy.rs:
