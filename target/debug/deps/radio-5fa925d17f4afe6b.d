/root/repo/target/debug/deps/radio-5fa925d17f4afe6b.d: crates/radio/src/lib.rs crates/radio/src/bt.rs crates/radio/src/cell.rs crates/radio/src/wifi.rs crates/radio/src/world.rs

/root/repo/target/debug/deps/radio-5fa925d17f4afe6b: crates/radio/src/lib.rs crates/radio/src/bt.rs crates/radio/src/cell.rs crates/radio/src/wifi.rs crates/radio/src/world.rs

crates/radio/src/lib.rs:
crates/radio/src/bt.rs:
crates/radio/src/cell.rs:
crates/radio/src/wifi.rs:
crates/radio/src/world.rs:
