/root/repo/target/debug/deps/ablation_discovery_cache-e719a34d2b2a1a45.d: crates/bench/src/bin/ablation_discovery_cache.rs

/root/repo/target/debug/deps/ablation_discovery_cache-e719a34d2b2a1a45: crates/bench/src/bin/ablation_discovery_cache.rs

crates/bench/src/bin/ablation_discovery_cache.rs:
