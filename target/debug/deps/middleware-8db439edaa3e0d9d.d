/root/repo/target/debug/deps/middleware-8db439edaa3e0d9d.d: crates/core/tests/middleware.rs

/root/repo/target/debug/deps/middleware-8db439edaa3e0d9d: crates/core/tests/middleware.rs

crates/core/tests/middleware.rs:
