/root/repo/target/debug/deps/ablation_discovery_cache-28ac89435e5ee6a8.d: crates/bench/src/bin/ablation_discovery_cache.rs

/root/repo/target/debug/deps/ablation_discovery_cache-28ac89435e5ee6a8: crates/bench/src/bin/ablation_discovery_cache.rs

crates/bench/src/bin/ablation_discovery_cache.rs:
