/root/repo/target/debug/deps/platform-edbfe002c9a562de.d: crates/smartmsg/tests/platform.rs

/root/repo/target/debug/deps/platform-edbfe002c9a562de: crates/smartmsg/tests/platform.rs

crates/smartmsg/tests/platform.rs:
