/root/repo/target/debug/deps/sm_breakup-b41b8e5ef9d6a93e.d: crates/bench/src/bin/sm_breakup.rs

/root/repo/target/debug/deps/sm_breakup-b41b8e5ef9d6a93e: crates/bench/src/bin/sm_breakup.rs

crates/bench/src/bin/sm_breakup.rs:
