/root/repo/target/debug/deps/full_stack-4193b529ac95065e.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-4193b529ac95065e: tests/full_stack.rs

tests/full_stack.rs:
