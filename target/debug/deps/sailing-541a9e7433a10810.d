/root/repo/target/debug/deps/sailing-541a9e7433a10810.d: crates/sailing/src/lib.rs crates/sailing/src/regatta.rs crates/sailing/src/scenario.rs crates/sailing/src/weather.rs

/root/repo/target/debug/deps/sailing-541a9e7433a10810: crates/sailing/src/lib.rs crates/sailing/src/regatta.rs crates/sailing/src/scenario.rs crates/sailing/src/weather.rs

crates/sailing/src/lib.rs:
crates/sailing/src/regatta.rs:
crates/sailing/src/scenario.rs:
crates/sailing/src/weather.rs:
