/root/repo/target/debug/deps/table1_latency-dedd81fa7d6ce5eb.d: crates/bench/src/bin/table1_latency.rs

/root/repo/target/debug/deps/table1_latency-dedd81fa7d6ce5eb: crates/bench/src/bin/table1_latency.rs

crates/bench/src/bin/table1_latency.rs:
