/root/repo/target/debug/deps/query_language-5f7264e46fc1deb4.d: crates/bench/benches/query_language.rs

/root/repo/target/debug/deps/query_language-5f7264e46fc1deb4: crates/bench/benches/query_language.rs

crates/bench/benches/query_language.rs:
