/root/repo/target/debug/deps/radio-339ffaed308ec2a6.d: crates/radio/src/lib.rs crates/radio/src/bt.rs crates/radio/src/cell.rs crates/radio/src/wifi.rs crates/radio/src/world.rs

/root/repo/target/debug/deps/libradio-339ffaed308ec2a6.rlib: crates/radio/src/lib.rs crates/radio/src/bt.rs crates/radio/src/cell.rs crates/radio/src/wifi.rs crates/radio/src/world.rs

/root/repo/target/debug/deps/libradio-339ffaed308ec2a6.rmeta: crates/radio/src/lib.rs crates/radio/src/bt.rs crates/radio/src/cell.rs crates/radio/src/wifi.rs crates/radio/src/world.rs

crates/radio/src/lib.rs:
crates/radio/src/bt.rs:
crates/radio/src/cell.rs:
crates/radio/src/wifi.rs:
crates/radio/src/world.rs:
