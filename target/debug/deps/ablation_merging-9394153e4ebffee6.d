/root/repo/target/debug/deps/ablation_merging-9394153e4ebffee6.d: crates/bench/src/bin/ablation_merging.rs

/root/repo/target/debug/deps/ablation_merging-9394153e4ebffee6: crates/bench/src/bin/ablation_merging.rs

crates/bench/src/bin/ablation_merging.rs:
