/root/repo/target/debug/deps/fig4_power_trace-e5e4cb0d87ea4864.d: crates/bench/src/bin/fig4_power_trace.rs

/root/repo/target/debug/deps/fig4_power_trace-e5e4cb0d87ea4864: crates/bench/src/bin/fig4_power_trace.rs

crates/bench/src/bin/fig4_power_trace.rs:
