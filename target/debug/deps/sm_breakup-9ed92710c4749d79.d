/root/repo/target/debug/deps/sm_breakup-9ed92710c4749d79.d: crates/bench/src/bin/sm_breakup.rs

/root/repo/target/debug/deps/sm_breakup-9ed92710c4749d79: crates/bench/src/bin/sm_breakup.rs

crates/bench/src/bin/sm_breakup.rs:
