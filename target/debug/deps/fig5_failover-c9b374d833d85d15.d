/root/repo/target/debug/deps/fig5_failover-c9b374d833d85d15.d: crates/bench/src/bin/fig5_failover.rs

/root/repo/target/debug/deps/fig5_failover-c9b374d833d85d15: crates/bench/src/bin/fig5_failover.rs

crates/bench/src/bin/fig5_failover.rs:
