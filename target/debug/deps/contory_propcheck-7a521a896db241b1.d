/root/repo/target/debug/deps/contory_propcheck-7a521a896db241b1.d: crates/propcheck/src/lib.rs

/root/repo/target/debug/deps/contory_propcheck-7a521a896db241b1: crates/propcheck/src/lib.rs

crates/propcheck/src/lib.rs:
