/root/repo/target/debug/deps/sailing-42d6c65f6f689264.d: crates/sailing/src/lib.rs crates/sailing/src/regatta.rs crates/sailing/src/scenario.rs crates/sailing/src/weather.rs

/root/repo/target/debug/deps/libsailing-42d6c65f6f689264.rlib: crates/sailing/src/lib.rs crates/sailing/src/regatta.rs crates/sailing/src/scenario.rs crates/sailing/src/weather.rs

/root/repo/target/debug/deps/libsailing-42d6c65f6f689264.rmeta: crates/sailing/src/lib.rs crates/sailing/src/regatta.rs crates/sailing/src/scenario.rs crates/sailing/src/weather.rs

crates/sailing/src/lib.rs:
crates/sailing/src/regatta.rs:
crates/sailing/src/scenario.rs:
crates/sailing/src/weather.rs:
