/root/repo/target/debug/deps/contory_propcheck-7f82bbfa1a3dc6e0.d: crates/propcheck/src/lib.rs

/root/repo/target/debug/deps/libcontory_propcheck-7f82bbfa1a3dc6e0.rlib: crates/propcheck/src/lib.rs

/root/repo/target/debug/deps/libcontory_propcheck-7f82bbfa1a3dc6e0.rmeta: crates/propcheck/src/lib.rs

crates/propcheck/src/lib.rs:
