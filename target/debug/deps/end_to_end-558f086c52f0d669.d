/root/repo/target/debug/deps/end_to_end-558f086c52f0d669.d: crates/testbed/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-558f086c52f0d669: crates/testbed/tests/end_to_end.rs

crates/testbed/tests/end_to_end.rs:
