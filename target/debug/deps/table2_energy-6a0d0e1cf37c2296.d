/root/repo/target/debug/deps/table2_energy-6a0d0e1cf37c2296.d: crates/bench/src/bin/table2_energy.rs

/root/repo/target/debug/deps/table2_energy-6a0d0e1cf37c2296: crates/bench/src/bin/table2_energy.rs

crates/bench/src/bin/table2_energy.rs:
