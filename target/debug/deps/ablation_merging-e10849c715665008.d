/root/repo/target/debug/deps/ablation_merging-e10849c715665008.d: crates/bench/src/bin/ablation_merging.rs

/root/repo/target/debug/deps/ablation_merging-e10849c715665008: crates/bench/src/bin/ablation_merging.rs

crates/bench/src/bin/ablation_merging.rs:
