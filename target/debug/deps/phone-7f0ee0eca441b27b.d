/root/repo/target/debug/deps/phone-7f0ee0eca441b27b.d: crates/phone/src/lib.rs crates/phone/src/battery.rs crates/phone/src/device.rs crates/phone/src/memory.rs crates/phone/src/meter.rs crates/phone/src/power.rs crates/phone/src/profiles.rs crates/phone/src/units.rs

/root/repo/target/debug/deps/libphone-7f0ee0eca441b27b.rlib: crates/phone/src/lib.rs crates/phone/src/battery.rs crates/phone/src/device.rs crates/phone/src/memory.rs crates/phone/src/meter.rs crates/phone/src/power.rs crates/phone/src/profiles.rs crates/phone/src/units.rs

/root/repo/target/debug/deps/libphone-7f0ee0eca441b27b.rmeta: crates/phone/src/lib.rs crates/phone/src/battery.rs crates/phone/src/device.rs crates/phone/src/memory.rs crates/phone/src/meter.rs crates/phone/src/power.rs crates/phone/src/profiles.rs crates/phone/src/units.rs

crates/phone/src/lib.rs:
crates/phone/src/battery.rs:
crates/phone/src/device.rs:
crates/phone/src/memory.rs:
crates/phone/src/meter.rs:
crates/phone/src/power.rs:
crates/phone/src/profiles.rs:
crates/phone/src/units.rs:
