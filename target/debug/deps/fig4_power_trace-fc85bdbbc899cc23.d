/root/repo/target/debug/deps/fig4_power_trace-fc85bdbbc899cc23.d: crates/bench/src/bin/fig4_power_trace.rs

/root/repo/target/debug/deps/fig4_power_trace-fc85bdbbc899cc23: crates/bench/src/bin/fig4_power_trace.rs

crates/bench/src/bin/fig4_power_trace.rs:
