/root/repo/target/debug/deps/proptests-ae619a29d8598e27.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-ae619a29d8598e27: tests/proptests.rs

tests/proptests.rs:
