/root/repo/target/debug/deps/contory_repro-947f82db98bd7f6d.d: src/lib.rs

/root/repo/target/debug/deps/libcontory_repro-947f82db98bd7f6d.rlib: src/lib.rs

/root/repo/target/debug/deps/libcontory_repro-947f82db98bd7f6d.rmeta: src/lib.rs

src/lib.rs:
