/root/repo/target/debug/deps/simkit-762717b0ba8c5df4.d: crates/simkit/src/lib.rs crates/simkit/src/faults.rs crates/simkit/src/rng.rs crates/simkit/src/sim.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs crates/simkit/src/trace.rs

/root/repo/target/debug/deps/simkit-762717b0ba8c5df4: crates/simkit/src/lib.rs crates/simkit/src/faults.rs crates/simkit/src/rng.rs crates/simkit/src/sim.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs crates/simkit/src/trace.rs

crates/simkit/src/lib.rs:
crates/simkit/src/faults.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/sim.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
crates/simkit/src/trace.rs:
