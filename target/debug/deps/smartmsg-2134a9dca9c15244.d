/root/repo/target/debug/deps/smartmsg-2134a9dca9c15244.d: crates/smartmsg/src/lib.rs crates/smartmsg/src/finder.rs crates/smartmsg/src/program.rs crates/smartmsg/src/runtime.rs crates/smartmsg/src/tag.rs

/root/repo/target/debug/deps/libsmartmsg-2134a9dca9c15244.rlib: crates/smartmsg/src/lib.rs crates/smartmsg/src/finder.rs crates/smartmsg/src/program.rs crates/smartmsg/src/runtime.rs crates/smartmsg/src/tag.rs

/root/repo/target/debug/deps/libsmartmsg-2134a9dca9c15244.rmeta: crates/smartmsg/src/lib.rs crates/smartmsg/src/finder.rs crates/smartmsg/src/program.rs crates/smartmsg/src/runtime.rs crates/smartmsg/src/tag.rs

crates/smartmsg/src/lib.rs:
crates/smartmsg/src/finder.rs:
crates/smartmsg/src/program.rs:
crates/smartmsg/src/runtime.rs:
crates/smartmsg/src/tag.rs:
