/root/repo/target/debug/deps/end_to_end-400238b71c12c02b.d: crates/fuego/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-400238b71c12c02b: crates/fuego/tests/end_to_end.rs

crates/fuego/tests/end_to_end.rs:
