/root/repo/target/debug/deps/contory_bench-1ec813bb7feacfc9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/contory_bench-1ec813bb7feacfc9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
