/root/repo/target/debug/deps/contory_bench-e701b25116357a32.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcontory_bench-e701b25116357a32.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcontory_bench-e701b25116357a32.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
