/root/repo/target/debug/deps/contory-a074c9ddc8702849.d: crates/core/src/lib.rs crates/core/src/access.rs crates/core/src/aggregator.rs crates/core/src/backoff.rs crates/core/src/client.rs crates/core/src/error.rs crates/core/src/facade.rs crates/core/src/factory.rs crates/core/src/failover.rs crates/core/src/item.rs crates/core/src/manager.rs crates/core/src/merge.rs crates/core/src/monitor.rs crates/core/src/policy.rs crates/core/src/predicate.rs crates/core/src/providers/mod.rs crates/core/src/providers/adhoc.rs crates/core/src/providers/infra.rs crates/core/src/providers/local.rs crates/core/src/publisher.rs crates/core/src/query/mod.rs crates/core/src/query/ast.rs crates/core/src/query/builder.rs crates/core/src/query/lexer.rs crates/core/src/query/parser.rs crates/core/src/refs.rs crates/core/src/repository.rs crates/core/src/vocab.rs

/root/repo/target/debug/deps/contory-a074c9ddc8702849: crates/core/src/lib.rs crates/core/src/access.rs crates/core/src/aggregator.rs crates/core/src/backoff.rs crates/core/src/client.rs crates/core/src/error.rs crates/core/src/facade.rs crates/core/src/factory.rs crates/core/src/failover.rs crates/core/src/item.rs crates/core/src/manager.rs crates/core/src/merge.rs crates/core/src/monitor.rs crates/core/src/policy.rs crates/core/src/predicate.rs crates/core/src/providers/mod.rs crates/core/src/providers/adhoc.rs crates/core/src/providers/infra.rs crates/core/src/providers/local.rs crates/core/src/publisher.rs crates/core/src/query/mod.rs crates/core/src/query/ast.rs crates/core/src/query/builder.rs crates/core/src/query/lexer.rs crates/core/src/query/parser.rs crates/core/src/refs.rs crates/core/src/repository.rs crates/core/src/vocab.rs

crates/core/src/lib.rs:
crates/core/src/access.rs:
crates/core/src/aggregator.rs:
crates/core/src/backoff.rs:
crates/core/src/client.rs:
crates/core/src/error.rs:
crates/core/src/facade.rs:
crates/core/src/factory.rs:
crates/core/src/failover.rs:
crates/core/src/item.rs:
crates/core/src/manager.rs:
crates/core/src/merge.rs:
crates/core/src/monitor.rs:
crates/core/src/policy.rs:
crates/core/src/predicate.rs:
crates/core/src/providers/mod.rs:
crates/core/src/providers/adhoc.rs:
crates/core/src/providers/infra.rs:
crates/core/src/providers/local.rs:
crates/core/src/publisher.rs:
crates/core/src/query/mod.rs:
crates/core/src/query/ast.rs:
crates/core/src/query/builder.rs:
crates/core/src/query/lexer.rs:
crates/core/src/query/parser.rs:
crates/core/src/refs.rs:
crates/core/src/repository.rs:
crates/core/src/vocab.rs:
