/root/repo/target/debug/deps/sensors-12039147d8fa0f40.d: crates/sensors/src/lib.rs crates/sensors/src/btgps.rs crates/sensors/src/env.rs crates/sensors/src/gps.rs crates/sensors/src/sensor.rs

/root/repo/target/debug/deps/sensors-12039147d8fa0f40: crates/sensors/src/lib.rs crates/sensors/src/btgps.rs crates/sensors/src/env.rs crates/sensors/src/gps.rs crates/sensors/src/sensor.rs

crates/sensors/src/lib.rs:
crates/sensors/src/btgps.rs:
crates/sensors/src/env.rs:
crates/sensors/src/gps.rs:
crates/sensors/src/sensor.rs:
