/root/repo/target/debug/deps/phone-e1c2a3a11f1c496e.d: crates/phone/src/lib.rs crates/phone/src/battery.rs crates/phone/src/device.rs crates/phone/src/memory.rs crates/phone/src/meter.rs crates/phone/src/power.rs crates/phone/src/profiles.rs crates/phone/src/units.rs

/root/repo/target/debug/deps/phone-e1c2a3a11f1c496e: crates/phone/src/lib.rs crates/phone/src/battery.rs crates/phone/src/device.rs crates/phone/src/memory.rs crates/phone/src/meter.rs crates/phone/src/power.rs crates/phone/src/profiles.rs crates/phone/src/units.rs

crates/phone/src/lib.rs:
crates/phone/src/battery.rs:
crates/phone/src/device.rs:
crates/phone/src/memory.rs:
crates/phone/src/meter.rs:
crates/phone/src/power.rs:
crates/phone/src/profiles.rs:
crates/phone/src/units.rs:
