/root/repo/target/debug/deps/fuego-a2936d06ac85e44a.d: crates/fuego/src/lib.rs crates/fuego/src/broker.rs crates/fuego/src/client.rs crates/fuego/src/event.rs crates/fuego/src/infra.rs crates/fuego/src/xml.rs

/root/repo/target/debug/deps/libfuego-a2936d06ac85e44a.rlib: crates/fuego/src/lib.rs crates/fuego/src/broker.rs crates/fuego/src/client.rs crates/fuego/src/event.rs crates/fuego/src/infra.rs crates/fuego/src/xml.rs

/root/repo/target/debug/deps/libfuego-a2936d06ac85e44a.rmeta: crates/fuego/src/lib.rs crates/fuego/src/broker.rs crates/fuego/src/client.rs crates/fuego/src/event.rs crates/fuego/src/infra.rs crates/fuego/src/xml.rs

crates/fuego/src/lib.rs:
crates/fuego/src/broker.rs:
crates/fuego/src/client.rs:
crates/fuego/src/event.rs:
crates/fuego/src/infra.rs:
crates/fuego/src/xml.rs:
