/root/repo/target/debug/deps/sensors-037d794f0b92c17e.d: crates/sensors/src/lib.rs crates/sensors/src/btgps.rs crates/sensors/src/env.rs crates/sensors/src/gps.rs crates/sensors/src/sensor.rs

/root/repo/target/debug/deps/libsensors-037d794f0b92c17e.rlib: crates/sensors/src/lib.rs crates/sensors/src/btgps.rs crates/sensors/src/env.rs crates/sensors/src/gps.rs crates/sensors/src/sensor.rs

/root/repo/target/debug/deps/libsensors-037d794f0b92c17e.rmeta: crates/sensors/src/lib.rs crates/sensors/src/btgps.rs crates/sensors/src/env.rs crates/sensors/src/gps.rs crates/sensors/src/sensor.rs

crates/sensors/src/lib.rs:
crates/sensors/src/btgps.rs:
crates/sensors/src/env.rs:
crates/sensors/src/gps.rs:
crates/sensors/src/sensor.rs:
