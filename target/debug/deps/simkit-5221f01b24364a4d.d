/root/repo/target/debug/deps/simkit-5221f01b24364a4d.d: crates/simkit/src/lib.rs crates/simkit/src/faults.rs crates/simkit/src/rng.rs crates/simkit/src/sim.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs crates/simkit/src/trace.rs

/root/repo/target/debug/deps/libsimkit-5221f01b24364a4d.rlib: crates/simkit/src/lib.rs crates/simkit/src/faults.rs crates/simkit/src/rng.rs crates/simkit/src/sim.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs crates/simkit/src/trace.rs

/root/repo/target/debug/deps/libsimkit-5221f01b24364a4d.rmeta: crates/simkit/src/lib.rs crates/simkit/src/faults.rs crates/simkit/src/rng.rs crates/simkit/src/sim.rs crates/simkit/src/stats.rs crates/simkit/src/time.rs crates/simkit/src/trace.rs

crates/simkit/src/lib.rs:
crates/simkit/src/faults.rs:
crates/simkit/src/rng.rs:
crates/simkit/src/sim.rs:
crates/simkit/src/stats.rs:
crates/simkit/src/time.rs:
crates/simkit/src/trace.rs:
