/root/repo/target/debug/deps/contory_criterion-4ddaccc1b884da47.d: crates/crit/src/lib.rs

/root/repo/target/debug/deps/contory_criterion-4ddaccc1b884da47: crates/crit/src/lib.rs

crates/crit/src/lib.rs:
