/root/repo/target/debug/deps/smartmsg-b3793479bcabdeac.d: crates/smartmsg/src/lib.rs crates/smartmsg/src/finder.rs crates/smartmsg/src/program.rs crates/smartmsg/src/runtime.rs crates/smartmsg/src/tag.rs

/root/repo/target/debug/deps/smartmsg-b3793479bcabdeac: crates/smartmsg/src/lib.rs crates/smartmsg/src/finder.rs crates/smartmsg/src/program.rs crates/smartmsg/src/runtime.rs crates/smartmsg/src/tag.rs

crates/smartmsg/src/lib.rs:
crates/smartmsg/src/finder.rs:
crates/smartmsg/src/program.rs:
crates/smartmsg/src/runtime.rs:
crates/smartmsg/src/tag.rs:
