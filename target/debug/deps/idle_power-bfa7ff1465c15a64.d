/root/repo/target/debug/deps/idle_power-bfa7ff1465c15a64.d: crates/bench/src/bin/idle_power.rs

/root/repo/target/debug/deps/idle_power-bfa7ff1465c15a64: crates/bench/src/bin/idle_power.rs

crates/bench/src/bin/idle_power.rs:
