/root/repo/target/debug/deps/fig5_failover-e840a7170d59e7b4.d: crates/bench/src/bin/fig5_failover.rs

/root/repo/target/debug/deps/fig5_failover-e840a7170d59e7b4: crates/bench/src/bin/fig5_failover.rs

crates/bench/src/bin/fig5_failover.rs:
