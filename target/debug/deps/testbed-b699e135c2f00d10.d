/root/repo/target/debug/deps/testbed-b699e135c2f00d10.d: crates/testbed/src/lib.rs crates/testbed/src/convert.rs crates/testbed/src/harness.rs crates/testbed/src/refs_impl.rs crates/testbed/src/scenario.rs

/root/repo/target/debug/deps/testbed-b699e135c2f00d10: crates/testbed/src/lib.rs crates/testbed/src/convert.rs crates/testbed/src/harness.rs crates/testbed/src/refs_impl.rs crates/testbed/src/scenario.rs

crates/testbed/src/lib.rs:
crates/testbed/src/convert.rs:
crates/testbed/src/harness.rs:
crates/testbed/src/refs_impl.rs:
crates/testbed/src/scenario.rs:
