/root/repo/target/debug/deps/merging-f21ed80eb0b4d8f9.d: crates/bench/benches/merging.rs

/root/repo/target/debug/deps/merging-f21ed80eb0b4d8f9: crates/bench/benches/merging.rs

crates/bench/benches/merging.rs:
