/root/repo/target/debug/deps/table1_latency-6dd220286514d1d9.d: crates/bench/src/bin/table1_latency.rs

/root/repo/target/debug/deps/table1_latency-6dd220286514d1d9: crates/bench/src/bin/table1_latency.rs

crates/bench/src/bin/table1_latency.rs:
