/root/repo/target/debug/deps/fuego-7e69987da54604a6.d: crates/fuego/src/lib.rs crates/fuego/src/broker.rs crates/fuego/src/client.rs crates/fuego/src/event.rs crates/fuego/src/infra.rs crates/fuego/src/xml.rs

/root/repo/target/debug/deps/fuego-7e69987da54604a6: crates/fuego/src/lib.rs crates/fuego/src/broker.rs crates/fuego/src/client.rs crates/fuego/src/event.rs crates/fuego/src/infra.rs crates/fuego/src/xml.rs

crates/fuego/src/lib.rs:
crates/fuego/src/broker.rs:
crates/fuego/src/client.rs:
crates/fuego/src/event.rs:
crates/fuego/src/infra.rs:
crates/fuego/src/xml.rs:
