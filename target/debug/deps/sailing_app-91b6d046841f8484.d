/root/repo/target/debug/deps/sailing_app-91b6d046841f8484.d: crates/sailing/tests/sailing_app.rs

/root/repo/target/debug/deps/sailing_app-91b6d046841f8484: crates/sailing/tests/sailing_app.rs

crates/sailing/tests/sailing_app.rs:
