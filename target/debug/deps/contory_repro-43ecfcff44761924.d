/root/repo/target/debug/deps/contory_repro-43ecfcff44761924.d: src/lib.rs

/root/repo/target/debug/deps/contory_repro-43ecfcff44761924: src/lib.rs

src/lib.rs:
