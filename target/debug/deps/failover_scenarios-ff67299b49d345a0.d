/root/repo/target/debug/deps/failover_scenarios-ff67299b49d345a0.d: tests/failover_scenarios.rs

/root/repo/target/debug/deps/failover_scenarios-ff67299b49d345a0: tests/failover_scenarios.rs

tests/failover_scenarios.rs:
