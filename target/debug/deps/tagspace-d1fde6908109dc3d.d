/root/repo/target/debug/deps/tagspace-d1fde6908109dc3d.d: crates/bench/benches/tagspace.rs

/root/repo/target/debug/deps/tagspace-d1fde6908109dc3d: crates/bench/benches/tagspace.rs

crates/bench/benches/tagspace.rs:
