/root/repo/target/debug/deps/idle_power-d387fae02a89b670.d: crates/bench/src/bin/idle_power.rs

/root/repo/target/debug/deps/idle_power-d387fae02a89b670: crates/bench/src/bin/idle_power.rs

crates/bench/src/bin/idle_power.rs:
