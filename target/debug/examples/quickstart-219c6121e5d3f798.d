/root/repo/target/debug/examples/quickstart-219c6121e5d3f798.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-219c6121e5d3f798: examples/quickstart.rs

examples/quickstart.rs:
