/root/repo/target/debug/examples/sailing_weather-8997df7d7f073bbd.d: examples/sailing_weather.rs

/root/repo/target/debug/examples/sailing_weather-8997df7d7f073bbd: examples/sailing_weather.rs

examples/sailing_weather.rs:
