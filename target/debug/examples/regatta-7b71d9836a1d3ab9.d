/root/repo/target/debug/examples/regatta-7b71d9836a1d3ab9.d: examples/regatta.rs

/root/repo/target/debug/examples/regatta-7b71d9836a1d3ab9: examples/regatta.rs

examples/regatta.rs:
