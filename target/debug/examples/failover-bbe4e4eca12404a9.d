/root/repo/target/debug/examples/failover-bbe4e4eca12404a9.d: examples/failover.rs

/root/repo/target/debug/examples/failover-bbe4e4eca12404a9: examples/failover.rs

examples/failover.rs:
