/root/repo/target/debug/examples/query_tour-52fe11270c580b68.d: examples/query_tour.rs

/root/repo/target/debug/examples/query_tour-52fe11270c580b68: examples/query_tour.rs

examples/query_tour.rs:
