//! umbrella
pub use contory;
